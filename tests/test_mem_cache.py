"""Tests for the set-associative cache models."""

import numpy as np
import pytest

from repro.errors import MemoryModelError
from repro.mem.cache import CacheGeometry, SetAssociativeCache, WayManagedCache


def make_cache(sets=4, ways=2, policy="lru", rng=None):
    return SetAssociativeCache(
        CacheGeometry(sets=sets, ways=ways, line_size=64), policy=policy, rng=rng
    )


def test_geometry_properties():
    geometry = CacheGeometry(sets=2048, ways=4, line_size=64)
    assert geometry.size_bytes == 512 * 1024
    assert geometry.line_shift == 6
    assert geometry.index_mask == 2047
    assert geometry.natural_index((2048 + 5)) == 5
    assert "512KiB" in str(geometry)


def test_geometry_validation():
    with pytest.raises(MemoryModelError):
        CacheGeometry(sets=3, ways=2, line_size=64)
    with pytest.raises(MemoryModelError):
        CacheGeometry(sets=4, ways=0, line_size=64)
    with pytest.raises(MemoryModelError):
        CacheGeometry.from_size(1000, 4, 64)


def test_first_access_is_cold_miss():
    cache = make_cache()
    hit, cold, evicted = cache.access(10, set_index=0, write=False, owner=1)
    assert not hit and cold and evicted is None
    stats = cache.stats.owner(1)
    assert stats.accesses == 1 and stats.misses == 1 and stats.cold_misses == 1


def test_second_access_hits():
    cache = make_cache()
    cache.access(10, 0, False, 1)
    hit, cold, _ = cache.access(10, 0, False, 1)
    assert hit and not cold
    assert cache.stats.owner(1).hits == 1


def test_run_multiplicity_counts_extra_hits():
    cache = make_cache()
    cache.access(10, 0, False, 1, n=5)
    stats = cache.stats.owner(1)
    assert stats.accesses == 5
    assert stats.misses == 1 and stats.hits == 4


def test_lru_eviction_order():
    cache = make_cache(sets=1, ways=2)
    cache.access(1, 0, False, 1)
    cache.access(2, 0, False, 1)
    cache.access(1, 0, False, 1)  # 1 becomes MRU
    _hit, _cold, evicted = cache.access(3, 0, False, 1)
    assert evicted is not None and evicted[0] == 2  # LRU victim


def test_fifo_policy_ignores_recency():
    cache = make_cache(sets=1, ways=2, policy="fifo")
    cache.access(1, 0, False, 1)
    cache.access(2, 0, False, 1)
    cache.access(1, 0, False, 1)  # hit; FIFO does not reorder
    _hit, _cold, evicted = cache.access(3, 0, False, 1)
    assert evicted[0] == 1  # oldest inserted


def test_random_policy_needs_rng_and_evicts_resident():
    with pytest.raises(MemoryModelError):
        make_cache(policy="random")
    cache = make_cache(sets=1, ways=2, policy="random",
                       rng=np.random.default_rng(0))
    cache.access(1, 0, False, 1)
    cache.access(2, 0, False, 1)
    _hit, _cold, evicted = cache.access(3, 0, False, 1)
    assert evicted[0] in (1, 2)


def test_dirty_writeback_accounting():
    cache = make_cache(sets=1, ways=1)
    cache.access(1, 0, True, owner=1)  # dirty fill
    _hit, _cold, evicted = cache.access(2, 0, False, owner=2)
    assert evicted == (1, 1, True)
    assert cache.stats.owner(1).writebacks == 1
    assert cache.stats.owner(1).evictions_suffered == 1


def test_eviction_matrix_attribution():
    cache = make_cache(sets=1, ways=1)
    cache.access(1, 0, False, owner=1)
    cache.access(2, 0, False, owner=2)  # owner 2 evicts owner 1
    assert cache.stats.eviction_matrix == {(2, 1): 1}
    assert cache.stats.cross_owner_evictions() == 1


def test_probe_writeback_updates_in_place():
    cache = make_cache()
    cache.access(5, 1, False, 1)
    assert cache.probe_writeback(5, 1, 1)
    assert not cache.probe_writeback(99, 1, 1)
    # A hit probe marks dirty: evicting it must report dirty.
    cache_small = make_cache(sets=1, ways=1)
    cache_small.access(1, 0, False, 1)
    cache_small.probe_writeback(1, 0, 1)
    _h, _c, evicted = cache_small.access(2, 0, False, 1)
    assert evicted[2] is True


def test_invalidate_owner_and_all():
    cache = make_cache()
    cache.access(1, 0, False, owner=1)
    cache.access(2, 1, True, owner=2)
    # Owner 1 has no dirty lines: nothing to flush, line still dropped.
    assert cache.invalidate_owner(1) == []
    assert not cache.contains(1)
    assert cache.contains(2)
    # Line 2 was dirty: it is returned for the caller to write back and
    # counted as a writeback of its owner.
    assert cache.invalidate_all() == [(2, 2)]
    assert cache.stats.owner(2).writebacks == 1
    assert cache.resident_lines == 0


def test_invalidate_owner_returns_dirty_lines():
    cache = make_cache()
    cache.access(1, 0, True, owner=1)
    cache.access(5, 1, True, owner=1)
    cache.access(2, 0, False, owner=1)
    assert cache.invalidate_owner(1) == [1, 5]
    assert cache.stats.owner(1).writebacks == 2
    assert cache.resident_lines == 0
    # A fresh fill works after the wipe (membership map consistent).
    hit, cold, _ = cache.access(1, 0, False, owner=1)
    assert not hit


def test_forget_history_resets_cold_classifier():
    cache = make_cache(sets=1, ways=1)
    cache.access(1, 0, False, 1)
    cache.access(2, 0, False, 1)  # evicts 1
    cache.forget_history()
    cache.access(1, 0, False, 1)
    # Two initial cold misses plus the re-classified one after reset.
    assert cache.stats.owner(1).cold_misses == 3


def test_stats_total_and_reset():
    cache = make_cache()
    cache.access(1, 0, False, 1)
    cache.access(1, 0, False, 2)
    total = cache.stats.total
    assert total.accesses == 2
    cache.stats.reset()
    assert cache.stats.total.accesses == 0
    assert cache.contains(1)  # contents untouched


def test_miss_rate_property():
    cache = make_cache()
    cache.access(1, 0, False, 1)
    cache.access(1, 0, False, 1)
    assert cache.stats.owner(1).miss_rate == pytest.approx(0.5)


# -- way-managed (column caching) baseline -------------------------------


def test_way_cache_hit_on_any_way_alloc_restricted():
    cache = WayManagedCache(CacheGeometry(sets=1, ways=4, line_size=64))
    cache.access(1, 0, False, owner=1, alloc_ways=(0, 1))
    cache.access(2, 0, False, owner=2, alloc_ways=(2, 3))
    # Owner 2 can hit owner 1's line...
    hit, _c, _e = cache.access(1, 0, False, owner=2, alloc_ways=(2, 3))
    assert hit
    # ...but never evicts outside its columns.
    cache.access(3, 0, False, owner=2, alloc_ways=(2, 3))
    _hit, _cold, evicted = cache.access(4, 0, False, owner=2, alloc_ways=(2, 3))
    assert evicted is not None and evicted[1] == 2


def test_way_cache_lru_within_columns():
    cache = WayManagedCache(CacheGeometry(sets=1, ways=2, line_size=64))
    cache.access(1, 0, False, 1, alloc_ways=(0, 1))
    cache.access(2, 0, False, 1, alloc_ways=(0, 1))
    cache.access(1, 0, False, 1, alloc_ways=(0, 1))
    _h, _c, evicted = cache.access(3, 0, False, 1, alloc_ways=(0, 1))
    assert evicted[0] == 2


def test_way_cache_empty_alloc_rejected():
    cache = WayManagedCache(CacheGeometry(sets=1, ways=2, line_size=64))
    with pytest.raises(MemoryModelError):
        cache.access(1, 0, False, 1, alloc_ways=())


def test_way_cache_writeback_probe():
    cache = WayManagedCache(CacheGeometry(sets=1, ways=2, line_size=64))
    cache.access(1, 0, False, 1, alloc_ways=(0,))
    assert cache.probe_writeback(1, 0, 1)
    assert not cache.probe_writeback(9, 0, 1)
