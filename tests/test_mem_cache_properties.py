"""Property-based tests: the cache against a tiny reference model."""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.mem.cache import CacheGeometry, SetAssociativeCache


class ReferenceLru:
    """Obviously correct LRU cache keyed by (set, line)."""

    def __init__(self, sets, ways):
        self.ways = ways
        self.sets = [OrderedDict() for _ in range(sets)]
        self.seen = set()

    def access(self, line, set_index):
        bucket = self.sets[set_index]
        cold = line not in self.seen
        self.seen.add(line)
        if line in bucket:
            bucket.move_to_end(line)
            return True, cold
        if len(bucket) >= self.ways:
            bucket.popitem(last=False)
        bucket[line] = None
        return False, cold


@settings(max_examples=60)
@given(
    sets_log=st.integers(0, 3),
    ways=st.integers(1, 4),
    accesses=st.lists(st.integers(0, 63), min_size=1, max_size=400),
)
def test_lru_matches_reference_model(sets_log, ways, accesses):
    sets = 1 << sets_log
    cache = SetAssociativeCache(
        CacheGeometry(sets=sets, ways=ways, line_size=64)
    )
    reference = ReferenceLru(sets, ways)
    for line in accesses:
        set_index = line % sets
        got_hit, got_cold, _ = cache.access(line, set_index, False, owner=1)
        want_hit, want_cold = reference.access(line, set_index)
        assert got_hit == want_hit
        assert got_cold == want_cold
    stats = cache.stats.owner(1)
    assert stats.accesses == len(accesses)
    assert stats.hits + stats.misses == stats.accesses


@settings(max_examples=40)
@given(
    accesses=st.lists(
        st.tuples(st.integers(0, 31), st.booleans()), min_size=1, max_size=200
    )
)
def test_dirty_lines_writeback_exactly_once(accesses):
    """Every dirty line is written back at most once per residence."""
    cache = SetAssociativeCache(CacheGeometry(sets=2, ways=2, line_size=64))
    writes_seen = 0
    for line, write in accesses:
        cache.access(line, line % 2, write, owner=1)
        if write:
            writes_seen += 1
    stats = cache.stats.owner(1)
    assert stats.writebacks <= writes_seen
    assert stats.evictions_suffered >= stats.writebacks


@settings(max_examples=40)
@given(st.lists(st.integers(0, 255), min_size=1, max_size=300))
def test_bigger_cache_never_misses_more(lines):
    """LRU inclusion: doubling ways cannot increase misses (same sets)."""
    results = []
    for ways in (2, 4):
        cache = SetAssociativeCache(
            CacheGeometry(sets=4, ways=ways, line_size=64)
        )
        for line in lines:
            cache.access(line, line % 4, False, owner=1)
        results.append(cache.stats.owner(1).misses)
    assert results[1] <= results[0]
