"""Differential tests: the fast and compiled engines against the oracle.

Every engine tier -- the fast Python walker, the stateless per-batch C
kernel (``walk_batch``), and the schedule-compiled tier (persistent C
state handle + ``walk_segment``) -- must produce *bit-identical*
statistics to the reference engine: every ``BatchResult``, every
per-owner ``OwnerStats`` at both cache levels, the
eviction-attribution matrices, DRAM traffic and bus accounting.  The
streams below mix reads and writes, random and streaming access
(store-fill path), shared-buffer traffic (interval owners) and private
task footprints, across all three partition modes and the inlined L2
policies.  The compiled engine runs every batch -- the test streams
are all far below the fast tier's 4096-run threshold, so these cases
are exactly the persistent-handle small-batch path the stateless C
kernel cannot serve.

Task address regions are disjoint per task: the model requires a
stable line-to-set mapping, so a line not covered by the interval
table must always be issued by the same owner (the seed model shares
this contract -- violating it corrupts its bookkeeping too).
"""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mem import cwalker
from repro.mem.cache import CacheGeometry
from repro.mem.hierarchy import HierarchyConfig, MemorySystem, SegmentEntry
from repro.mem.partition import PartitionMode
from repro.mem.trace import AccessBatch

C_AVAILABLE = cwalker.load() is not None


def build_system(engine, mode, l2_policy="lru", c_threshold=None):
    config = HierarchyConfig(
        l1_geometry=CacheGeometry(sets=4, ways=2, line_size=64),
        l2_geometry=CacheGeometry(sets=32, ways=4, line_size=64),
        engine=engine,
        l2_policy=l2_policy,
    )
    mem = MemorySystem(2, config, mode=mode)
    if c_threshold is not None:
        mem.c_walk_threshold = c_threshold
    mem.resolver.intervals.add(0, 4096, owner=7)
    mem.resolver.intervals.add(1 << 20, (1 << 20) + 8192, owner=8)
    if mode is PartitionMode.SET_PARTITIONED:
        mem.set_map.assign(1, base=0, n_sets=8)
        mem.set_map.assign(7, base=8, n_sets=3)  # non-power-of-two group
        mem.set_map.set_default_pool(base=16, n_sets=16)
        mem.set_map.alias(8, 7)
    if mode is PartitionMode.WAY_PARTITIONED:
        mem.way_map.assign(1, (0, 1))
        mem.way_map.assign(7, (2,))
    return mem


def generate_batch(rng, step, task):
    n = int(rng.integers(100, 600))
    private_base = 0 if task == 1 else 1 << 21
    if step % 3 == 2:
        # Streaming full-line stores: exercises write-validate fills.
        start = private_base + (int(rng.integers(0, 1 << 16)) & ~63)
        addrs = start + 4 * np.arange(n)
        writes = np.ones(n, dtype=bool)
    elif step % 3 == 1:
        # Hammer the shared buffers (interval-table owners).
        if step % 2:
            addrs = (1 << 20) + (rng.integers(0, 8192, n) & ~3)
        else:
            addrs = rng.integers(0, 4096, n) & ~3
        writes = rng.random(n) < 0.5
    else:
        # Random traffic over the task's private region.
        addrs = private_base + (rng.integers(0, 1 << 18, n) & ~3)
        writes = rng.random(n) < 0.4
    return AccessBatch.from_addresses(addrs, writes=writes)


def assert_systems_identical(reference, fast, context):
    fast.sync_state()  # materialise compiled-tier state (no-op otherwise)
    for cpu in range(reference.n_cpus):
        ref_l1, fast_l1 = reference.l1s[cpu].stats, fast.l1s[cpu].stats
        assert ref_l1.per_owner == fast_l1.per_owner, (context, "l1", cpu)
        assert ref_l1.eviction_matrix == fast_l1.eviction_matrix, (
            context, "l1 matrix", cpu,
        )
    assert reference.l2_stats.per_owner == fast.l2_stats.per_owner, context
    assert (reference.l2_stats.eviction_matrix
            == fast.l2_stats.eviction_matrix), context
    assert vars(reference.memory.traffic) == vars(fast.memory.traffic), context
    assert reference.bus.total_transfers == fast.bus.total_transfers, context
    assert (reference.bus.total_surcharge_cycles
            == fast.bus.total_surcharge_cycles), context
    if reference.l2 is not None:
        # Same resident lines, owners and dirty bits, per set.
        assert reference.l2._owner_of == fast.l2._owner_of, context
        assert reference.l2._dirty == fast.l2._dirty, context
        for set_index in range(reference.l2.geometry.sets):
            assert (reference.l2.set_contents(set_index)
                    == fast.l2.set_contents(set_index)), (context, set_index)
    else:
        # Way-managed L2: same occupied slots, owners, stamps, clock.
        # (Owner/stamp of an *empty* slot is dead state the model never
        # reads; the engines may differ there.)
        ref_way, fast_way = reference.l2_way, fast.l2_way
        assert ref_way._line == fast_way._line, context
        assert ref_way._dirty == fast_way._dirty, context
        assert ref_way._clock == fast_way._clock, context
        for si, slot_lines in enumerate(ref_way._line):
            for way, line in enumerate(slot_lines):
                if line is None:
                    continue
                assert (ref_way._owner[si][way]
                        == fast_way._owner[si][way]), (context, si, way)
                assert (ref_way._stamp[si][way]
                        == fast_way._stamp[si][way]), (context, si, way)


def run_differential(mode, l2_policy, seed, c_threshold, engine="fast"):
    reference = build_system("reference", mode, l2_policy)
    fast = build_system(engine, mode, l2_policy, c_threshold=c_threshold)
    rng = np.random.default_rng(seed)
    for step in range(12):
        task = 1 + step % 2
        batch = generate_batch(rng, step, task)
        ref_result = reference.execute_batch(
            step % 2, task, batch, now=step * 500.0
        )
        fast_result = fast.execute_batch(
            step % 2, task, batch, now=step * 500.0
        )
        assert ref_result == fast_result, (mode, l2_policy, seed, step)
    assert_systems_identical(reference, fast, (mode, l2_policy, seed))


@pytest.mark.parametrize("mode", list(PartitionMode))
@pytest.mark.parametrize("l2_policy", ["lru", "fifo"])
@pytest.mark.parametrize("seed", [99, 7, 2024])
def test_python_walker_matches_reference(mode, l2_policy, seed):
    """Fast Python walker vs oracle, every mode and inlined policy."""
    run_differential(mode, l2_policy, seed, c_threshold=1 << 62)


@pytest.mark.skipif(not C_AVAILABLE, reason="no C compiler available")
@pytest.mark.parametrize(
    "mode", [PartitionMode.SHARED, PartitionMode.SET_PARTITIONED]
)
@pytest.mark.parametrize("l2_policy", ["lru", "fifo"])
@pytest.mark.parametrize("seed", [99, 7, 2024])
def test_c_walker_matches_reference(mode, l2_policy, seed):
    """Stateless C kernel (forced via threshold=1) vs oracle."""
    run_differential(mode, l2_policy, seed, c_threshold=1)


@pytest.mark.skipif(not C_AVAILABLE, reason="no C compiler available")
@pytest.mark.parametrize("mode", list(PartitionMode))
@pytest.mark.parametrize("l2_policy", ["lru", "fifo"])
@pytest.mark.parametrize("seed", [99, 7, 2024])
def test_compiled_engine_matches_reference(mode, l2_policy, seed):
    """Persistent-handle tier vs oracle, every partition mode.

    Unlike the stateless kernel, the compiled tier also walks the
    way-partitioned column cache inline, and it serves *every* batch
    size -- the streams here are hundreds of runs, far below the fast
    tier's C threshold.
    """
    if mode is PartitionMode.WAY_PARTITIONED and l2_policy == "fifo":
        pytest.skip("way-managed L2 has no replacement-policy knob")
    run_differential(mode, l2_policy, seed, c_threshold=None,
                     engine="compiled")


# -- schedule segments ---------------------------------------------------------


def build_segment(rng, n_cpus=2, n_computes=8, with_switch=True):
    """A mixed compute/delay segment (plus context-switch traffic)."""
    entries = []
    if with_switch:
        entries.append(SegmentEntry.switch(
            0, 1, generate_batch(rng, 0, 1), 400
        ))
    for step in range(n_computes):
        task = 1 + step % 2
        entries.append(SegmentEntry.compute(
            step % n_cpus, task, generate_batch(rng, step, task)
        ))
        if step % 3 == 0:
            entries.append(SegmentEntry.delay(250 * (step % 2)))
    return entries


@pytest.mark.skipif(not C_AVAILABLE, reason="no C compiler available")
@pytest.mark.parametrize("mode", list(PartitionMode))
@pytest.mark.parametrize("seed", [13, 512])
def test_segment_walk_matches_sequential_reference(mode, seed):
    """One C segment call == the op-by-op reference walk."""
    reference = build_system("reference", mode)
    compiled = build_system("compiled", mode)
    rng_a = np.random.default_rng(seed)
    rng_b = np.random.default_rng(seed)
    segment_a = build_segment(rng_a)
    segment_b = build_segment(rng_b)
    done_a, results_a, elapsed_a = reference.execute_segment(
        segment_a, now=1000.0
    )
    done_b, results_b, elapsed_b = compiled.execute_segment(
        segment_b, now=1000.0
    )
    assert compiled._compiled is not None  # really ran the C tier
    assert (done_a, elapsed_a) == (done_b, elapsed_b)
    assert results_a == results_b
    assert done_a == len(segment_a)
    assert_systems_identical(reference, compiled, (mode, seed))


@pytest.mark.skipif(not C_AVAILABLE, reason="no C compiler available")
@pytest.mark.parametrize("horizon_offset", [0.5, 1.0, 5000.0, math.inf])
def test_segment_stops_at_the_event_horizon(horizon_offset):
    """Entry k >= 1 may not start at/after the horizon; entry 0 always
    runs; cut-off entries leave no trace on any state."""
    reference = build_system("reference", PartitionMode.SHARED)
    compiled = build_system("compiled", PartitionMode.SHARED)
    rng = np.random.default_rng(77)
    entries = [
        SegmentEntry.compute(0, 1, generate_batch(rng, s, 1))
        for s in range(6)
    ]
    horizon = 1000.0 + horizon_offset
    ref = reference.execute_segment(entries, 1000.0, horizon=horizon)
    comp = compiled.execute_segment(entries, 1000.0, horizon=horizon)
    assert ref == comp
    if horizon_offset == math.inf:
        assert ref[0] == len(entries)
    else:
        assert ref[0] < len(entries)
    assert_systems_identical(reference, compiled, horizon)


@pytest.mark.skipif(not C_AVAILABLE, reason="no C compiler available")
def test_segment_stops_on_quantum_expiry():
    """use_quantum stops after the op that exhausts the quantum --
    exactly the reference loop's preemption boundary."""
    reference = build_system("reference", PartitionMode.SHARED)
    compiled = build_system("compiled", PartitionMode.SHARED)
    rng = np.random.default_rng(5)
    entries = [
        SegmentEntry.compute(0, 1, generate_batch(rng, s, 1))
        for s in range(6)
    ]
    ref = reference.execute_segment(
        entries, 0.0, quantum=1, use_quantum=True
    )
    comp = compiled.execute_segment(
        entries, 0.0, quantum=1, use_quantum=True
    )
    assert ref == comp
    assert ref[0] == 1  # the first op exhausts a 1-cycle quantum
    # Without use_quantum the same budget is ignored.
    ref_all = reference.execute_segment(entries, 1e6, quantum=1)
    comp_all = compiled.execute_segment(entries, 1e6, quantum=1)
    assert ref_all == comp_all
    assert ref_all[0] == len(entries)
    assert_systems_identical(reference, compiled, "quantum")


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_random_l2_policy_replays_the_reference_rng(engine):
    """The fast walker replays the oracle's RNG stream draw for draw
    (PR 1 leftover: it used to fall back to the reference walk)."""
    config = HierarchyConfig(
        l1_geometry=CacheGeometry(sets=4, ways=2, line_size=64),
        l2_geometry=CacheGeometry(sets=16, ways=2, line_size=64),
        l2_policy="random",
        engine=engine,
    )
    reference = MemorySystem(
        1,
        HierarchyConfig(
            l1_geometry=config.l1_geometry,
            l2_geometry=config.l2_geometry,
            l2_policy="random",
            engine="reference",
        ),
        rng=np.random.default_rng(0),
    )
    system = MemorySystem(1, config, rng=np.random.default_rng(0))
    rng = np.random.default_rng(5)
    for step in range(10):
        addrs = rng.integers(0, 1 << 16, 500) & ~3
        writes = rng.random(500) < 0.4
        batch = AccessBatch.from_addresses(addrs, writes=writes)
        assert system.execute_batch(0, 1, batch, step * 100.0) == \
            reference.execute_batch(0, 1, batch, step * 100.0), step
    assert system.l2_stats.per_owner == reference.l2_stats.per_owner
    assert system.l2._owner_of == reference.l2._owner_of
    # The generators marched in lockstep: same state after the run.
    assert (system.l2._rng.bit_generator.state
            == reference.l2._rng.bit_generator.state)


@pytest.mark.skipif(not C_AVAILABLE, reason="no C compiler available")
def test_compiled_engine_survives_negative_owner_fallback():
    """A negative *task* owner takes the oracle path mid-run; the
    compiled tier must hand its resident state down first and
    re-export after, so mixed positive/negative batches stay
    bit-identical.  (Negative ids never leave the owner registry; a
    negative task owner is the supported out-of-contract escape hatch
    every engine funnels to the reference walk.)"""
    reference = build_system("reference", PartitionMode.SHARED)
    compiled = build_system("compiled", PartitionMode.SHARED)
    rng = np.random.default_rng(21)
    for step in range(9):
        if step % 3 == 2:
            # Private traffic issued on behalf of a negative owner.
            addrs = (1 << 24) + (rng.integers(0, 1 << 16, 300) & ~3)
            batch = AccessBatch.from_addresses(addrs)
            task = -3
        else:
            task = 1 + step % 2
            batch = generate_batch(rng, step, task)
        assert compiled.execute_batch(0, task, batch, step * 500.0) == \
            reference.execute_batch(0, task, batch, step * 500.0), step
    assert_systems_identical(reference, compiled, "negative owners")


def test_compiled_engine_degrades_for_random_l2():
    """random replacement keeps the RNG replay in the Python walker."""
    config = HierarchyConfig(
        l1_geometry=CacheGeometry(sets=4, ways=2, line_size=64),
        l2_geometry=CacheGeometry(sets=16, ways=2, line_size=64),
        l2_policy="random",
        engine="compiled",
    )
    system = MemorySystem(1, config, rng=np.random.default_rng(0))
    assert not system.segment_ready
    reference = MemorySystem(
        1,
        HierarchyConfig(
            l1_geometry=config.l1_geometry,
            l2_geometry=config.l2_geometry,
            l2_policy="random",
            engine="reference",
        ),
        rng=np.random.default_rng(0),
    )
    rng = np.random.default_rng(9)
    addrs = rng.integers(0, 1 << 16, 400) & ~3
    batch = AccessBatch.from_addresses(addrs)
    assert system.execute_batch(0, 1, batch, 0.0) == \
        reference.execute_batch(0, 1, batch, 0.0)


def test_engine_config_validated():
    with pytest.raises(ConfigurationError):
        HierarchyConfig(engine="warp")
    for engine in HierarchyConfig.ENGINES:
        assert HierarchyConfig(engine=engine).engine == engine


@pytest.mark.parametrize(
    "c_threshold",
    [1 << 62] + ([1] if C_AVAILABLE else []),
    ids=["python", "c"][: 1 + C_AVAILABLE],
)
def test_cold_misses_after_forget_history(c_threshold):
    """Regression: across a forget_history() epoch, lines can be
    resident yet unseen; the C walker's cold classification must count
    the first *miss* of such lines, not their first occurrence."""
    def run(engine, threshold):
        mem = MemorySystem(1, HierarchyConfig(engine=engine))
        mem.c_walk_threshold = threshold
        mem.execute_batch(
            0, 1, AccessBatch.from_addresses(np.arange(200) * 64), 0.0
        )
        mem.l1s[0].forget_history()
        mem.l2.forget_history()
        rng = np.random.default_rng(3)
        batch = AccessBatch.from_addresses(rng.integers(0, 300, 5000) * 64)
        mem.execute_batch(0, 1, batch, 100.0)
        return (
            mem.l1s[0].stats.per_owner,
            mem.l2_stats.per_owner,
            sorted(mem.l1s[0]._seen),
            sorted(mem.l2._seen),
        )

    assert run("fast", c_threshold) == run("reference", 1 << 62)


def test_repartition_flushes_dirty_lines_to_dram():
    mem = build_system("fast", PartitionMode.SHARED)
    writes = AccessBatch.from_addresses([0, 64, 1 << 21], writes=True)
    mem.execute_batch(0, 1, writes, now=0.0)
    before = mem.memory.traffic.line_writes
    flushed = mem.repartition()
    # Each of the three written lines is dirty in its L1 *and* in the L2
    # (store misses install the line dirty at both levels).
    assert flushed == 6
    assert mem.memory.traffic.line_writes == before + 6
    assert mem.l2.resident_lines == 0
    for l1 in mem.l1s:
        assert l1.resident_lines == 0
    # The next access must miss again (caches really were invalidated)
    # but is not cold (the history survives a repartition).
    result = mem.execute_batch(0, 1, AccessBatch.from_addresses([0]), 10.0)
    assert result.l1_misses == 1


def test_repartition_in_way_mode():
    mem = build_system("fast", PartitionMode.WAY_PARTITIONED)
    writes = AccessBatch.from_addresses([0, 64], writes=True)
    mem.execute_batch(0, 1, writes, now=0.0)
    assert mem.repartition() == 4  # two dirty lines per level
