"""Differential tests: the fast hierarchy engine against the oracle.

The fast engine (Python walker and, for large batches, the compiled C
walker) must produce *bit-identical* statistics to the reference
engine: every ``BatchResult``, every per-owner ``OwnerStats`` at both
cache levels, the eviction-attribution matrices, DRAM traffic and bus
accounting.  The streams below mix reads and writes, random and
streaming access (store-fill path), shared-buffer traffic (interval
owners) and private task footprints, across all three partition modes
and both inlined L2 policies.

Task address regions are disjoint per task: the model requires a
stable line-to-set mapping, so a line not covered by the interval
table must always be issued by the same owner (the seed model shares
this contract -- violating it corrupts its bookkeeping too).
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mem import cwalker
from repro.mem.cache import CacheGeometry
from repro.mem.hierarchy import HierarchyConfig, MemorySystem
from repro.mem.partition import PartitionMode
from repro.mem.trace import AccessBatch

C_AVAILABLE = cwalker.load() is not None


def build_system(engine, mode, l2_policy="lru", c_threshold=None):
    config = HierarchyConfig(
        l1_geometry=CacheGeometry(sets=4, ways=2, line_size=64),
        l2_geometry=CacheGeometry(sets=32, ways=4, line_size=64),
        engine=engine,
        l2_policy=l2_policy,
    )
    mem = MemorySystem(2, config, mode=mode)
    if c_threshold is not None:
        mem.c_walk_threshold = c_threshold
    mem.resolver.intervals.add(0, 4096, owner=7)
    mem.resolver.intervals.add(1 << 20, (1 << 20) + 8192, owner=8)
    if mode is PartitionMode.SET_PARTITIONED:
        mem.set_map.assign(1, base=0, n_sets=8)
        mem.set_map.assign(7, base=8, n_sets=3)  # non-power-of-two group
        mem.set_map.set_default_pool(base=16, n_sets=16)
        mem.set_map.alias(8, 7)
    if mode is PartitionMode.WAY_PARTITIONED:
        mem.way_map.assign(1, (0, 1))
        mem.way_map.assign(7, (2,))
    return mem


def generate_batch(rng, step, task):
    n = int(rng.integers(100, 600))
    private_base = 0 if task == 1 else 1 << 21
    if step % 3 == 2:
        # Streaming full-line stores: exercises write-validate fills.
        start = private_base + (int(rng.integers(0, 1 << 16)) & ~63)
        addrs = start + 4 * np.arange(n)
        writes = np.ones(n, dtype=bool)
    elif step % 3 == 1:
        # Hammer the shared buffers (interval-table owners).
        if step % 2:
            addrs = (1 << 20) + (rng.integers(0, 8192, n) & ~3)
        else:
            addrs = rng.integers(0, 4096, n) & ~3
        writes = rng.random(n) < 0.5
    else:
        # Random traffic over the task's private region.
        addrs = private_base + (rng.integers(0, 1 << 18, n) & ~3)
        writes = rng.random(n) < 0.4
    return AccessBatch.from_addresses(addrs, writes=writes)


def assert_systems_identical(reference, fast, context):
    for cpu in range(reference.n_cpus):
        ref_l1, fast_l1 = reference.l1s[cpu].stats, fast.l1s[cpu].stats
        assert ref_l1.per_owner == fast_l1.per_owner, (context, "l1", cpu)
        assert ref_l1.eviction_matrix == fast_l1.eviction_matrix, (
            context, "l1 matrix", cpu,
        )
    assert reference.l2_stats.per_owner == fast.l2_stats.per_owner, context
    assert (reference.l2_stats.eviction_matrix
            == fast.l2_stats.eviction_matrix), context
    assert vars(reference.memory.traffic) == vars(fast.memory.traffic), context
    assert reference.bus.total_transfers == fast.bus.total_transfers, context
    assert (reference.bus.total_surcharge_cycles
            == fast.bus.total_surcharge_cycles), context
    if reference.l2 is not None:
        # Same resident lines, owners and dirty bits, per set.
        assert reference.l2._owner_of == fast.l2._owner_of, context
        assert reference.l2._dirty == fast.l2._dirty, context
        for set_index in range(reference.l2.geometry.sets):
            assert (reference.l2.set_contents(set_index)
                    == fast.l2.set_contents(set_index)), (context, set_index)


def run_differential(mode, l2_policy, seed, c_threshold):
    reference = build_system("reference", mode, l2_policy)
    fast = build_system("fast", mode, l2_policy, c_threshold=c_threshold)
    rng = np.random.default_rng(seed)
    for step in range(12):
        task = 1 + step % 2
        batch = generate_batch(rng, step, task)
        ref_result = reference.execute_batch(
            step % 2, task, batch, now=step * 500.0
        )
        fast_result = fast.execute_batch(
            step % 2, task, batch, now=step * 500.0
        )
        assert ref_result == fast_result, (mode, l2_policy, seed, step)
    assert_systems_identical(reference, fast, (mode, l2_policy, seed))


@pytest.mark.parametrize("mode", list(PartitionMode))
@pytest.mark.parametrize("l2_policy", ["lru", "fifo"])
@pytest.mark.parametrize("seed", [99, 7, 2024])
def test_python_walker_matches_reference(mode, l2_policy, seed):
    """Fast Python walker vs oracle, every mode and inlined policy."""
    run_differential(mode, l2_policy, seed, c_threshold=1 << 62)


@pytest.mark.skipif(not C_AVAILABLE, reason="no C compiler available")
@pytest.mark.parametrize(
    "mode", [PartitionMode.SHARED, PartitionMode.SET_PARTITIONED]
)
@pytest.mark.parametrize("l2_policy", ["lru", "fifo"])
@pytest.mark.parametrize("seed", [99, 7, 2024])
def test_c_walker_matches_reference(mode, l2_policy, seed):
    """Compiled walker (forced via threshold=1) vs oracle."""
    run_differential(mode, l2_policy, seed, c_threshold=1)


def test_random_l2_policy_falls_back_to_reference_walk():
    rng = np.random.default_rng(5)
    config = HierarchyConfig(
        l1_geometry=CacheGeometry(sets=4, ways=2, line_size=64),
        l2_geometry=CacheGeometry(sets=16, ways=2, line_size=64),
        l2_policy="random",
        engine="fast",
    )
    fast = MemorySystem(1, config, rng=np.random.default_rng(0))
    reference = MemorySystem(
        1,
        HierarchyConfig(
            l1_geometry=config.l1_geometry,
            l2_geometry=config.l2_geometry,
            l2_policy="random",
            engine="reference",
        ),
        rng=np.random.default_rng(0),
    )
    addrs = rng.integers(0, 1 << 16, 500) & ~3
    batch = AccessBatch.from_addresses(addrs)
    assert fast.execute_batch(0, 1, batch, 0.0) == reference.execute_batch(
        0, 1, batch, 0.0
    )
    assert fast.l2_stats.per_owner == reference.l2_stats.per_owner


def test_engine_config_validated():
    with pytest.raises(ConfigurationError):
        HierarchyConfig(engine="warp")


@pytest.mark.parametrize(
    "c_threshold",
    [1 << 62] + ([1] if C_AVAILABLE else []),
    ids=["python", "c"][: 1 + C_AVAILABLE],
)
def test_cold_misses_after_forget_history(c_threshold):
    """Regression: across a forget_history() epoch, lines can be
    resident yet unseen; the C walker's cold classification must count
    the first *miss* of such lines, not their first occurrence."""
    def run(engine, threshold):
        mem = MemorySystem(1, HierarchyConfig(engine=engine))
        mem.c_walk_threshold = threshold
        mem.execute_batch(
            0, 1, AccessBatch.from_addresses(np.arange(200) * 64), 0.0
        )
        mem.l1s[0].forget_history()
        mem.l2.forget_history()
        rng = np.random.default_rng(3)
        batch = AccessBatch.from_addresses(rng.integers(0, 300, 5000) * 64)
        mem.execute_batch(0, 1, batch, 100.0)
        return (
            mem.l1s[0].stats.per_owner,
            mem.l2_stats.per_owner,
            sorted(mem.l1s[0]._seen),
            sorted(mem.l2._seen),
        )

    assert run("fast", c_threshold) == run("reference", 1 << 62)


def test_repartition_flushes_dirty_lines_to_dram():
    mem = build_system("fast", PartitionMode.SHARED)
    writes = AccessBatch.from_addresses([0, 64, 1 << 21], writes=True)
    mem.execute_batch(0, 1, writes, now=0.0)
    before = mem.memory.traffic.line_writes
    flushed = mem.repartition()
    # Each of the three written lines is dirty in its L1 *and* in the L2
    # (store misses install the line dirty at both levels).
    assert flushed == 6
    assert mem.memory.traffic.line_writes == before + 6
    assert mem.l2.resident_lines == 0
    for l1 in mem.l1s:
        assert l1.resident_lines == 0
    # The next access must miss again (caches really were invalidated)
    # but is not cold (the history survives a repartition).
    result = mem.execute_batch(0, 1, AccessBatch.from_addresses([0]), 10.0)
    assert result.l1_misses == 1


def test_repartition_in_way_mode():
    mem = build_system("fast", PartitionMode.WAY_PARTITIONED)
    writes = AccessBatch.from_addresses([0, 64], writes=True)
    mem.execute_batch(0, 1, writes, now=0.0)
    assert mem.repartition() == 4  # two dirty lines per level
