"""Tests for the memory-hierarchy walker and DRAM/bus models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, MemoryModelError
from repro.mem.bus import BusConfig, SharedBus
from repro.mem.cache import CacheGeometry
from repro.mem.hierarchy import HierarchyConfig, MemorySystem
from repro.mem.memory import DramConfig, MainMemory
from repro.mem.partition import PartitionMode
from repro.mem.trace import AccessBatch


def small_config(**kwargs):
    defaults = dict(
        l1_geometry=CacheGeometry(sets=4, ways=2, line_size=64),
        l2_geometry=CacheGeometry(sets=16, ways=2, line_size=64),
    )
    defaults.update(kwargs)
    return HierarchyConfig(**defaults)


def test_line_size_mismatch_rejected():
    with pytest.raises(ConfigurationError):
        HierarchyConfig(
            l1_geometry=CacheGeometry(sets=4, ways=2, line_size=32),
            l2_geometry=CacheGeometry(sets=16, ways=2, line_size=64),
        )


def test_l1_filters_repeat_accesses():
    mem = MemorySystem(1, small_config())
    batch = AccessBatch.from_addresses([0, 0, 0, 4, 8], instructions=10)
    result = mem.execute_batch(0, task_owner=1, batch=batch, now=0)
    assert result.accesses == 5
    assert result.l1_misses == 1
    assert result.l2_accesses == 1
    assert result.l2_misses == 1


def test_second_batch_hits_l1():
    mem = MemorySystem(1, small_config())
    batch = AccessBatch.from_addresses([0, 4], instructions=4)
    mem.execute_batch(0, 1, batch, now=0)
    result = mem.execute_batch(0, 1, batch, now=100)
    assert result.l1_misses == 0 and result.l2_accesses == 0


def test_cycles_include_issue_and_stalls():
    config = small_config(issue_cpi=1.0, l2_hit_cycles=10)
    mem = MemorySystem(1, config)
    batch = AccessBatch.from_addresses([0], instructions=100)
    result = mem.execute_batch(0, 1, batch, now=0)
    # 100 issue + 10 L2 + DRAM + bus transfer cycles.
    assert result.cycles >= 110
    assert result.dram_lines == 1


def test_write_validate_skips_l2_demand_miss():
    mem = MemorySystem(1, small_config())
    full_line_write = AccessBatch.from_addresses(
        np.arange(16) * 4, writes=True, instructions=16
    )
    result = mem.execute_batch(0, 1, full_line_write, now=0)
    assert result.store_fills == 1
    assert result.l2_misses == 0
    assert result.dram_lines == 0
    # The line is present in the L2 afterwards (communication point).
    assert mem.l2.contains(0)


def test_partial_write_still_fetches():
    mem = MemorySystem(1, small_config())
    partial = AccessBatch.from_addresses([0, 4], writes=True, instructions=2)
    result = mem.execute_batch(0, 1, partial, now=0)
    assert result.store_fills == 0
    assert result.l2_misses == 1


def test_per_owner_attribution_via_interval_table():
    mem = MemorySystem(1, small_config())
    mem.resolver.intervals.add(0, 1024, owner=5)
    batch = AccessBatch.from_addresses([0, 2048], instructions=4)
    mem.execute_batch(0, task_owner=1, batch=batch, now=0)
    assert mem.l2_stats.per_owner[5].accesses == 1
    assert mem.l2_stats.per_owner[1].accesses == 1


def test_set_partitioned_mode_translates():
    mem = MemorySystem(
        1, small_config(), mode=PartitionMode.SET_PARTITIONED
    )
    mem.set_map.assign(owner=1, base=0, n_sets=2)
    # Two lines with different natural indices fold into the partition.
    batch = AccessBatch.from_addresses([0, 64 * 4], instructions=4)
    mem.execute_batch(0, 1, batch, now=0)
    contents = [mem.l2.set_contents(i) for i in range(16)]
    used_sets = [i for i, c in enumerate(contents) if c]
    assert used_sets == [0]  # both lines: natural idx 0 and 4 -> set 0


def test_way_partitioned_mode_runs():
    mem = MemorySystem(
        1, small_config(), mode=PartitionMode.WAY_PARTITIONED
    )
    mem.way_map.assign(owner=1, ways=(0,))
    batch = AccessBatch.from_addresses([0, 64, 128], instructions=6)
    result = mem.execute_batch(0, 1, batch, now=0)
    assert result.l2_misses == 3


def test_invalid_cpu_rejected():
    mem = MemorySystem(1, small_config())
    with pytest.raises(MemoryModelError):
        mem.execute_batch(3, 1, AccessBatch.empty(), now=0)


def test_reset_stats_keeps_contents():
    mem = MemorySystem(1, small_config())
    mem.execute_batch(0, 1, AccessBatch.from_addresses([0], instructions=1), 0)
    mem.reset_stats()
    assert mem.l2_stats.total.accesses == 0
    result = mem.execute_batch(
        0, 1, AccessBatch.from_addresses([0], instructions=1), 10
    )
    assert result.l1_misses == 0  # still cached


def test_dram_bank_conflicts():
    memory = MainMemory(DramConfig(access_cycles=10, n_banks=2,
                                   bank_busy_cycles=20, bank_penalty_cycles=5))
    first = memory.access(0, False, now=0)
    second = memory.access(2, False, now=1)  # same bank (0), still busy
    assert first == 10
    assert second == 15
    assert memory.traffic.bank_conflicts == 1
    assert memory.traffic.line_reads == 2


def test_bus_no_self_contention():
    bus = SharedBus(BusConfig(transfer_cycles=4), n_cpus=2)
    solo = bus.price_transfers(0, 1000, now=0)
    assert solo == 4000  # no other demand -> no surcharge
    # CPU 1 now sees CPU 0's demand.
    loaded = bus.price_transfers(1, 1000, now=1)
    assert loaded > 4000


def test_bus_demand_decays():
    bus = SharedBus(BusConfig(transfer_cycles=4, decay_cycles=100), n_cpus=2)
    bus.price_transfers(0, 1000, now=0)
    soon = bus.price_transfers(1, 10, now=1)
    later_bus = SharedBus(BusConfig(transfer_cycles=4, decay_cycles=100), n_cpus=2)
    later_bus.price_transfers(0, 1000, now=0)
    later = later_bus.price_transfers(1, 10, now=10_000)
    assert later < soon
