"""Tests for the OS interval table (buffer-id lookup)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryModelError
from repro.mem.intervals import IntervalTable


def test_lookup_hits_and_misses():
    table = IntervalTable()
    table.add(100, 200, owner=7)
    table.add(300, 400, owner=8)
    assert table.lookup(100) == 7
    assert table.lookup(199) == 7
    assert table.lookup(200) is None
    assert table.lookup(350) == 8
    assert table.lookup(50) is None


def test_overlap_rejected():
    table = IntervalTable()
    table.add(100, 200, owner=1)
    for base, end in ((150, 250), (50, 150), (100, 200), (120, 180), (0, 500)):
        with pytest.raises(MemoryModelError):
            table.add(base, end, owner=2)


def test_adjacent_intervals_allowed():
    table = IntervalTable()
    table.add(100, 200, owner=1)
    table.add(200, 300, owner=2)
    assert table.lookup(199) == 1
    assert table.lookup(200) == 2


def test_empty_interval_rejected():
    table = IntervalTable()
    with pytest.raises(MemoryModelError):
        table.add(100, 100, owner=1)


def test_remove_interval():
    table = IntervalTable()
    table.add(100, 200, owner=1)
    table.remove(100)
    assert table.lookup(150) is None
    with pytest.raises(MemoryModelError):
        table.remove(100)


def test_clear():
    table = IntervalTable()
    table.add(0, 10, owner=1)
    table.clear()
    assert len(table) == 0
    assert table.lookup(5) is None


def test_iteration_is_address_ordered():
    table = IntervalTable()
    table.add(300, 400, owner=3)
    table.add(100, 200, owner=1)
    table.add(200, 300, owner=2)
    assert [owner for _b, _e, owner in table] == [1, 2, 3]


@given(st.lists(st.tuples(st.integers(0, 50), st.integers(1, 20)), max_size=30))
def test_property_lookup_matches_linear_scan(spec):
    """Whatever subset of intervals gets inserted, lookup == linear scan."""
    table = IntervalTable()
    accepted = []
    for i, (base, length) in enumerate(spec):
        base, end = base * 100, base * 100 + length * 5
        try:
            table.add(base, end, owner=i + 1)
            accepted.append((base, end, i + 1))
        except MemoryModelError:
            pass
    for addr in range(0, 5200, 37):
        expected = None
        for base, end, owner in accepted:
            if base <= addr < end:
                expected = owner
                break
        assert table.lookup(addr) == expected


def test_lookup_many_matches_scalar_lookup():
    import numpy as np

    table = IntervalTable()
    table.add(100, 200, owner=3)
    table.add(400, 420, owner=5)
    addrs = np.array([0, 99, 100, 199, 200, 399, 400, 419, 420, 10_000])
    got = table.lookup_many(addrs)
    expected = [table.lookup(int(a)) for a in addrs]
    assert [None if g == -1 else int(g) for g in got.tolist()] == expected


def test_lookup_many_empty_table():
    import numpy as np

    table = IntervalTable()
    assert (table.lookup_many(np.array([1, 2, 3])) == -1).all()
