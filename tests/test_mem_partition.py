"""Tests for owner registry, resolver and partition maps."""

import pytest

from repro.errors import PartitionError
from repro.mem.intervals import IntervalTable
from repro.mem.partition import (
    OWNER_SHARED,
    OwnerRegistry,
    OwnerResolver,
    SetPartition,
    SetPartitionMap,
    WayPartitionMap,
)


def test_registry_roundtrip_and_idempotence():
    registry = OwnerRegistry()
    a = registry.register("task:a")
    assert registry.register("task:a") == a
    assert registry.id_of("task:a") == a
    assert registry.name_of(a) == "task:a"
    assert "task:a" in registry
    assert registry.names() == ["task:a"]


def test_registry_unknown_lookups():
    registry = OwnerRegistry()
    with pytest.raises(PartitionError):
        registry.id_of("nope")
    with pytest.raises(PartitionError):
        registry.name_of(99)


def test_resolver_prefers_interval_table():
    table = IntervalTable()
    table.add(1000, 2000, owner=42)
    resolver = OwnerResolver(table)
    assert resolver.resolve(1500, task_owner=7) == 42
    assert resolver.resolve(2500, task_owner=7) == 7


def test_set_partition_translate_power_of_two():
    partition = SetPartition(owner=1, base=16, n_sets=8)
    for line in range(64):
        index = partition.translate(line)
        assert 16 <= index < 24
        assert index == 16 + (line & 7)


def test_set_partition_translate_non_power_of_two_balanced():
    partition = SetPartition(owner=1, base=0, n_sets=6)
    counts = [0] * 6
    for line in range(600):
        counts[partition.translate(line)] += 1
    assert max(counts) == min(counts) == 100


def test_set_partition_validation():
    with pytest.raises(PartitionError):
        SetPartition(owner=1, base=0, n_sets=0)
    with pytest.raises(PartitionError):
        SetPartition(owner=1, base=-4, n_sets=4)


def test_partition_map_assign_and_map_index():
    pmap = SetPartitionMap(total_sets=64)
    pmap.assign(owner=1, base=0, n_sets=16)
    pmap.assign(owner=2, base=16, n_sets=8)
    assert pmap.map_index(1, 100) == 100 & 15
    assert pmap.map_index(2, 100) == 16 + (100 & 7)
    # Unpartitioned: conventional indexing over all sets.
    assert pmap.map_index(3, 100) == 100 & 63
    assert pmap.allocated_sets() == 24


def test_partition_map_overlap_rejected():
    pmap = SetPartitionMap(total_sets=64)
    pmap.assign(owner=1, base=0, n_sets=16)
    with pytest.raises(PartitionError):
        pmap.assign(owner=2, base=8, n_sets=16)
    # Re-assigning the same owner is allowed (reprogramming).
    pmap.assign(owner=1, base=32, n_sets=8)
    pmap.validate_disjoint()


def test_partition_map_bounds_and_shared_owner():
    pmap = SetPartitionMap(total_sets=32)
    with pytest.raises(PartitionError):
        pmap.assign(owner=1, base=24, n_sets=16)
    with pytest.raises(PartitionError):
        pmap.assign(owner=OWNER_SHARED, base=0, n_sets=8)


def test_partition_map_remove_and_clear():
    pmap = SetPartitionMap(total_sets=32)
    pmap.assign(owner=1, base=0, n_sets=8)
    pmap.remove(owner=1)
    assert pmap.partition_of(1) is None
    pmap.assign(owner=2, base=0, n_sets=8)
    pmap.clear()
    assert pmap.allocated_sets() == 0


def test_way_map_assign_and_defaults():
    wmap = WayPartitionMap(total_ways=4)
    assert wmap.ways_of(9) == (0, 1, 2, 3)
    wmap.assign(owner=1, ways=(0, 1))
    wmap.assign(owner=2, ways=(2,))
    assert wmap.ways_of(1) == (0, 1)
    with pytest.raises(PartitionError):
        wmap.assign(owner=3, ways=(1, 2))
    with pytest.raises(PartitionError):
        wmap.assign(owner=3, ways=(4,))
    with pytest.raises(PartitionError):
        wmap.assign(owner=3, ways=())


def test_resolve_many_matches_scalar_resolve():
    import numpy as np

    table = IntervalTable()
    table.add(0, 128, owner=4)
    resolver = OwnerResolver(table)
    addrs = np.array([0, 64, 128, 4096])
    got = resolver.resolve_many(addrs, task_owner=9)
    assert got.tolist() == [resolver.resolve(int(a), 9) for a in addrs]
    # Empty-table shortcut: everything falls back to the task owner.
    empty = OwnerResolver()
    assert (empty.resolve_many(addrs, task_owner=2) == 2).all()


def test_map_index_many_matches_scalar_map_index():
    import numpy as np

    pmap = SetPartitionMap(total_sets=64)
    pmap.assign(owner=1, base=0, n_sets=8)
    pmap.assign(owner=2, base=8, n_sets=5)  # non-power-of-two
    pmap.alias(3, 2)
    pmap.set_default_pool(base=32, n_sets=32)
    rng_lines = np.arange(0, 2048, 17)
    for owner in (1, 2, 3, 4, OWNER_SHARED):
        owners = np.full(rng_lines.shape, owner)
        got = pmap.map_index_many(owners, rng_lines)
        expected = [pmap.map_index(owner, int(line)) for line in rng_lines]
        assert got.tolist() == expected
    # Mixed-owner arrays hit every translation in one call.
    owners = np.array([1, 2, 3, 4, 0, 1, 2])
    lines = np.array([5, 13, 99, 1000, 77, 64, 6])
    got = pmap.map_index_many(owners, lines)
    assert got.tolist() == [
        pmap.map_index(int(o), int(line)) for o, line in zip(owners, lines)
    ]


def test_effective_partition_resolves_aliases():
    pmap = SetPartitionMap(total_sets=32)
    partition = pmap.assign(owner=1, base=0, n_sets=8)
    pmap.alias(2, 1)
    assert pmap.effective_partition(1) == partition
    assert pmap.effective_partition(2) == partition
    assert pmap.effective_partition(9) is None
