"""Tests for access batches and run-length coalescing."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryModelError
from repro.mem.trace import AccessBatch, coalesce_runs, interleave_batches


def test_from_addresses_defaults():
    batch = AccessBatch.from_addresses([0, 4, 8])
    assert batch.n_accesses == 3
    assert not batch.writes.any()
    assert batch.instructions == int(np.ceil(3 / AccessBatch.MEM_REF_FRACTION))


def test_from_addresses_scalar_write_flag():
    batch = AccessBatch.from_addresses([0, 4], writes=True)
    assert batch.writes.all()


def test_concat_sums_instructions():
    a = AccessBatch.from_addresses([0], instructions=10)
    b = AccessBatch.from_addresses([64], instructions=20)
    merged = AccessBatch.concat([a, b])
    assert merged.instructions == 30
    assert merged.n_accesses == 2


def test_empty_batch():
    batch = AccessBatch.empty()
    assert batch.n_accesses == 0 and batch.instructions == 0
    lines, counts, wany, wall = batch.runs(6)
    assert lines.shape == (0,)
    assert counts.shape == (0,) and wany.shape == (0,) and wall.shape == (0,)


def test_shape_mismatch_rejected():
    with pytest.raises(MemoryModelError):
        AccessBatch(
            addrs=np.zeros(3, dtype=np.int64),
            writes=np.zeros(2, dtype=bool),
            instructions=1,
        )


def test_runs_basic():
    # 64-byte lines: addresses 0..60 are line 0; 64 is line 1.
    addrs = np.array([0, 4, 8, 64, 68, 0], dtype=np.int64)
    writes = np.array([False, True, False, False, False, False])
    lines, counts, write_any, write_all = coalesce_runs(addrs, writes, 6)
    assert lines.tolist() == [0, 1, 0]
    assert counts.tolist() == [3, 2, 1]
    assert write_any.tolist() == [True, False, False]
    assert write_all.tolist() == [False, False, False]


def test_runs_write_all_detection():
    addrs = np.arange(16, dtype=np.int64) * 4  # one full line, 16 words
    writes = np.ones(16, dtype=bool)
    lines, counts, write_any, write_all = coalesce_runs(addrs, writes, 6)
    assert lines.tolist() == [0]
    assert counts.tolist() == [16]
    assert write_any.tolist() == [True]
    assert write_all.tolist() == [True]


def test_touched_lines_unique_sorted():
    batch = AccessBatch.from_addresses([128, 0, 64, 4, 130])
    assert batch.touched_lines(6).tolist() == [0, 1, 2]


@given(
    st.lists(st.tuples(st.integers(0, 1023), st.booleans()),
             min_size=1, max_size=200)
)
def test_property_runs_match_naive_rle(pairs):
    """Vectorised RLE equals a straightforward Python loop."""
    addrs = np.array([a for a, _w in pairs], dtype=np.int64)
    writes = np.array([w for _a, w in pairs], dtype=bool)
    lines, counts, write_any, write_all = coalesce_runs(addrs, writes, 6)
    naive = []
    for addr, write in pairs:
        line = addr >> 6
        if naive and naive[-1][0] == line:
            naive[-1][1] += 1
            naive[-1][2] = naive[-1][2] or write
            naive[-1][3] = naive[-1][3] and write
        else:
            naive.append([line, 1, write, write])
    assert lines.tolist() == [n[0] for n in naive]
    assert counts.tolist() == [n[1] for n in naive]
    assert write_any.tolist() == [n[2] for n in naive]
    assert write_all.tolist() == [n[3] for n in naive]
    assert int(counts.sum()) == len(pairs)


def test_interleave_batches_preserves_accesses():
    a = AccessBatch.from_addresses(np.arange(10) * 4, instructions=5)
    b = AccessBatch.from_addresses(np.arange(6) * 4 + 1000, instructions=7)
    merged = interleave_batches([a, b], chunk=4)
    assert merged.n_accesses == 16
    assert merged.instructions == 12
    assert set(merged.addrs.tolist()) == set(a.addrs.tolist()) | set(b.addrs.tolist())


def test_interleave_batches_rejects_nonpositive_chunk():
    """Regression: chunk=0 used to spin forever instead of raising."""
    batches = [AccessBatch.from_addresses([0, 4])]
    with pytest.raises(MemoryModelError):
        interleave_batches(batches, chunk=0)
    with pytest.raises(MemoryModelError):
        interleave_batches(batches, chunk=-3)


def test_from_addresses_accepts_zero_dim_write_array():
    """Regression: a 0-d numpy bool used to trip the shape check."""
    batch = AccessBatch.from_addresses([0, 4, 8], writes=np.asarray(True))
    assert batch.writes.all()
    batch = AccessBatch.from_addresses([0, 4], writes=np.bool_(False))
    assert not batch.writes.any()
