"""Tests for the address-pattern construction kit."""

import numpy as np
import pytest

from repro.errors import MemoryModelError
from repro.mem.address import Region, RegionKind
from repro.patterns import (
    block2d,
    gather_blocks,
    loop_code,
    ring,
    stencil,
    stream,
    table_lookup,
    zipf_indices,
)


def region(size=4096, base=0x1000, kind=RegionKind.HEAP):
    return Region("r", base=base, size=size, kind=kind)


def test_stream_dense():
    batch = stream(region(), offset=0, nbytes=64, elem=4)
    assert batch.n_accesses == 16
    assert batch.addrs[0] == 0x1000
    assert batch.addrs[-1] == 0x1000 + 60
    assert not batch.writes.any()


def test_stream_strided_and_write():
    batch = stream(region(), offset=128, nbytes=256, elem=4, stride=64,
                   write=True)
    assert batch.n_accesses == 4
    assert (np.diff(batch.addrs) == 64).all()
    assert batch.writes.all()


def test_stream_bounds_checked():
    with pytest.raises(MemoryModelError):
        stream(region(size=128), offset=64, nbytes=128)
    with pytest.raises(MemoryModelError):
        stream(region(), offset=-4)


def test_ring_wraps():
    fifo_region = region(size=256)
    batch = ring(fifo_region, head=192, nbytes=128, elem=4)
    assert batch.n_accesses == 32
    assert batch.addrs.max() < fifo_region.end
    assert batch.addrs.min() >= fifo_region.base
    # Wrap: both the tail and the head of the region are touched.
    assert (batch.addrs >= fifo_region.base + 192).any()
    assert (batch.addrs < fifo_region.base + 64).any()


def test_ring_oversize_rejected():
    with pytest.raises(MemoryModelError):
        ring(region(size=128), head=0, nbytes=256)


def test_loop_code_cycles_loop_body():
    code = region(size=8192, kind=RegionKind.CODE)
    batch = loop_code(code, loop_offset=0, loop_bytes=256, n_instructions=64,
                      bytes_per_instr=16)
    assert batch.instructions == 64
    assert batch.n_accesses == 64
    assert batch.addrs.max() < code.base + 256
    assert len(np.unique(batch.addrs)) == 16  # 256 / 16


def test_loop_code_bounds():
    code = region(size=512, kind=RegionKind.CODE)
    with pytest.raises(MemoryModelError):
        loop_code(code, loop_offset=0, loop_bytes=1024, n_instructions=8)
    assert loop_code(code, 0, 256, 0).n_accesses == 0


def test_block2d_rowmajor():
    batch = block2d(region(), row_stride=64, x0=2, y0=1, width=4, height=2,
                    elem=1)
    expected = [0x1000 + 64 + 2 + dx for dx in range(4)]
    expected += [0x1000 + 128 + 2 + dx for dx in range(4)]
    assert batch.addrs.tolist() == expected


def test_block2d_passes_repeat():
    one = block2d(region(), 64, 0, 0, 4, 4, passes=1)
    two = block2d(region(), 64, 0, 0, 4, 4, passes=2)
    assert two.n_accesses == 2 * one.n_accesses


def test_block2d_bounds():
    with pytest.raises(MemoryModelError):
        block2d(region(size=128), row_stride=64, x0=0, y0=1, width=65,
                height=1)
    with pytest.raises(MemoryModelError):
        block2d(region(), 64, 0, 0, 0, 4)


def test_gather_blocks_concatenates():
    batch = gather_blocks(region(), 64, [(0, 0), (8, 8)], 4, 4)
    assert batch.n_accesses == 32
    assert gather_blocks(region(), 64, [], 4, 4).n_accesses == 0


def test_stencil_traffic_and_bounds():
    src = region(size=64 * 32)
    dst = Region("dst", base=0x9000, size=64 * 32, kind=RegionKind.BSS)
    batch = stencil(src, dst, row_stride=64, width=16, rows=4, taps_x=3,
                    taps_y=3, elem=1)
    # Per output row: 3 source rows of 16 reads + 16 writes.
    assert batch.n_accesses == 4 * (3 * 16 + 16)
    assert batch.instructions == 4 * 16 * 9
    assert batch.writes.sum() == 4 * 16
    with pytest.raises(MemoryModelError):
        stencil(src, dst, row_stride=64, width=16, rows=31, taps_y=3)


def test_table_lookup_within_table():
    rng = np.random.default_rng(0)
    table_region = region(size=1024, kind=RegionKind.BSS)
    batch = table_lookup(table_region, rng, n=500, entry_bytes=8,
                         table_bytes=512)
    assert batch.n_accesses == 500
    assert batch.addrs.max() < table_region.base + 512
    assert (batch.addrs - table_region.base) .min() >= 0


def test_table_lookup_zipf_is_skewed():
    rng = np.random.default_rng(1)
    idx = zipf_indices(rng, 5000, table_entries=256, skew=1.3)
    head_share = (idx < 26).mean()
    assert head_share > 0.4  # hot head
    assert idx.max() < 256 and idx.min() >= 0


def test_table_lookup_uniform_spreads():
    rng = np.random.default_rng(2)
    table_region = region(size=4096, kind=RegionKind.BSS)
    batch = table_lookup(table_region, rng, n=4000, entry_bytes=8,
                         uniform=True)
    offsets = (batch.addrs - table_region.base) // 8
    head_share = (offsets < 51).mean()
    assert head_share < 0.2


def test_zipf_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(MemoryModelError):
        zipf_indices(rng, 10, table_entries=0)
    assert zipf_indices(rng, 0, 16).shape == (0,)
