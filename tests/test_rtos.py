"""Tests for tasks, scheduling, the memory layout and cache syscalls."""

import pytest

from repro.apps.synthetic import make_pipeline
from repro.cake import CakeConfig, Platform
from repro.errors import ConfigurationError, PartitionError, SchedulingError
from repro.kpn import ProcessNetwork, TaskSpec
from repro.mem.partition import PartitionMode
from repro.rtos import Scheduler, Task, TaskState, build_memory_layout
from repro.rtos.shmalloc import SHARED_REGION_NAMES
from repro.sim import Simulator


def dummy_program(ctx):
    yield ctx.delay(1)


def make_tasks(n, affinities=None):
    tasks = []
    for i in range(n):
        affinity = affinities[i] if affinities else None
        spec = TaskSpec(f"t{i}", dummy_program, affinity=affinity)
        tasks.append(Task(spec, owner_id=i + 1, context=None))
    return tasks


# -- Task lifecycle ----------------------------------------------------------


def test_task_lifecycle():
    def counting(ctx):
        yield 1
        yield 2

    spec = TaskSpec("t", counting)
    task = Task(spec, owner_id=1, context=None)
    assert task.state is TaskState.NEW
    task.start()
    assert task.state is TaskState.READY
    assert task.advance() == 1
    assert task.advance() == 2
    assert task.advance() is None


def test_task_double_start_rejected():
    task = make_tasks(1)[0]
    task.start()
    with pytest.raises(SchedulingError):
        task.start()


def test_task_advance_before_start_rejected():
    task = make_tasks(1)[0]
    with pytest.raises(SchedulingError):
        task.advance()


# -- Scheduler ----------------------------------------------------------------


def test_migrate_policy_uses_global_queue():
    sim = Simulator()
    tasks = make_tasks(3)
    scheduler = Scheduler(sim, tasks, n_cpus=2, policy="migrate")
    scheduler.start_all()
    assert scheduler.next_task(0) is tasks[0]
    assert scheduler.next_task(1) is tasks[1]
    assert scheduler.next_task(0) is tasks[2]
    assert scheduler.next_task(1) is None


def test_static_policy_respects_affinity_and_round_robin():
    sim = Simulator()
    tasks = make_tasks(4, affinities=[1, None, None, None])
    scheduler = Scheduler(sim, tasks, n_cpus=2, policy="static")
    assert scheduler.assignment["t0"] == 1
    # Remaining tasks round-robin over cpus 0,1,0.
    scheduler.start_all()
    assert scheduler.next_task(1) is tasks[0]
    assert scheduler.next_task(0) is tasks[1]


def test_invalid_affinity_rejected():
    sim = Simulator()
    tasks = make_tasks(1, affinities=[5])
    with pytest.raises(SchedulingError):
        Scheduler(sim, tasks, n_cpus=2, policy="static")


def test_unknown_policy_rejected():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        Scheduler(sim, [], n_cpus=1, policy="lottery")


def test_migration_counting():
    sim = Simulator()
    tasks = make_tasks(1)
    scheduler = Scheduler(sim, tasks, n_cpus=2, policy="migrate")
    scheduler.start_all()
    task = scheduler.next_task(0)
    scheduler.make_ready(task)
    task = scheduler.next_task(1)
    assert task.stats.migrations == 1


def test_wait_for_work_wakes_on_ready():
    sim = Simulator()
    tasks = make_tasks(1)
    scheduler = Scheduler(sim, tasks, n_cpus=1, policy="migrate")
    scheduler.start_all()
    task = scheduler.next_task(0)
    event = scheduler.wait_for_work(0)
    assert not event.triggered
    scheduler.make_ready(task)
    assert event.triggered


def test_task_done_accounting():
    sim = Simulator()
    tasks = make_tasks(2)
    scheduler = Scheduler(sim, tasks, n_cpus=1)
    scheduler.start_all()
    assert scheduler.live_tasks == 2
    scheduler.task_done(tasks[0])
    assert scheduler.live_tasks == 1
    with pytest.raises(SchedulingError):
        scheduler.make_ready(tasks[0])


# -- Memory layout -------------------------------------------------------------


def test_layout_contains_every_role():
    network = make_pipeline(n_stages=3, frame_bytes=4096)
    layout = build_memory_layout(network, placement="bump")
    assert set(layout.task_regions) == set(network.tasks)
    for parts in layout.task_regions.values():
        assert set(parts) == {"code", "data", "bss", "stack", "heap"}
    assert set(layout.shared_regions) == set(SHARED_REGION_NAMES)
    assert set(layout.fifo_regions) == set(network.fifos)
    assert set(layout.frame_regions) == {"scratch"}
    assert len(layout.fifo_admin_offsets) == len(network.fifos)


def test_layout_rt_data_fits_admin_blocks():
    network = make_pipeline(n_stages=6)
    layout = build_memory_layout(network)
    rt_data = layout.shared_regions["rt.data"]
    worst = max(layout.fifo_admin_offsets.values()) + 64
    assert worst <= rt_data.size


def test_layout_order_permutation_checked():
    network = make_pipeline(n_stages=3)
    with pytest.raises(ConfigurationError):
        build_memory_layout(network, order=["bogus"])


def test_layout_order_permutation_applies():
    network = make_pipeline(n_stages=3)
    default = build_memory_layout(network, placement="bump")
    reordered = build_memory_layout(
        network, placement="bump",
        order=list(reversed(default.allocation_order)),
    )
    name = default.allocation_order[0]
    assert default.memory_map.space.region(name).base != \
        reordered.memory_map.space.region(name).base


def test_layout_deterministic():
    network1 = make_pipeline(n_stages=3)
    network2 = make_pipeline(n_stages=3)
    bases1 = [r.base for r in build_memory_layout(network1, seed=5).memory_map.space]
    bases2 = [r.base for r in build_memory_layout(network2, seed=5).memory_map.space]
    assert bases1 == bases2


# -- Cache controller ----------------------------------------------------------


def make_platform():
    network = make_pipeline(n_stages=3, n_tokens=2)
    return Platform(network, CakeConfig(n_cpus=1),
                    mode=PartitionMode.SET_PARTITIONED)


def test_interval_table_loaded():
    platform = make_platform()
    controller = platform.cache_controller
    table = platform.mem.resolver.intervals
    # fifos + frames + 4 shared regions.
    expected = len(platform.network.fifos) + len(platform.network.frames) + 4
    assert len(table) == expected
    fifo_region = platform.layout.fifo_regions["link0"]
    owner = table.lookup(fifo_region.base)
    assert platform.registry.name_of(owner) == "fifo:link0"


def test_program_partitions_packs_contiguously():
    platform = make_platform()
    controller = platform.cache_controller
    controller.program_set_partitions({"task:stage0": 4, "task:stage1": 2})
    set_map = platform.mem.set_map
    p0 = set_map.partition_of(platform.registry.id_of("task:stage0"))
    p1 = set_map.partition_of(platform.registry.id_of("task:stage1"))
    assert p0.base == 0 and p0.n_sets == 4 * controller.unit_sets
    assert p1.base == p0.end
    assert controller.units_free() == controller.total_units - 6


def test_program_partitions_overflow_rejected():
    platform = make_platform()
    controller = platform.cache_controller
    with pytest.raises(PartitionError):
        controller.program_set_partitions(
            {"task:stage0": controller.total_units + 1}
        )
    with pytest.raises(PartitionError):
        controller.program_set_partitions({"task:stage0": 0})


def test_clear_partitions():
    platform = make_platform()
    controller = platform.cache_controller
    controller.program_set_partitions({"task:stage0": 2})
    controller.clear_partitions()
    assert controller.programmed_units == {}
    assert platform.mem.set_map.allocated_sets() == 0
