"""End-to-end differential matrix for the schedule-compiled tier.

The collector in :mod:`repro.cake.processor` batches consecutive
deterministic ops through one C call per segment; these tests pin the
whole-platform contract: for **every registered workload**, partition
mode, CPU count and scheduling knob exercised here, a run on the
compiled engine produces a :class:`RunMetrics` payload byte-identical
to the reference engine (and to the fast engine), including FIFO
blocking, round-robin preemption with pre-pulled ops handed back, and
context-switch traffic.  Without a C compiler the compiled engine
degrades to the fast walker, so the identities still hold -- only the
events-saved assertions need the real C tier.
"""

import pytest

from repro.cake.config import CakeConfig
from repro.cake.platform import Platform
from repro.exp.scenario import Scenario, WorkloadSpec, run_metrics_to_payload
from repro.exp.workloads import registered_workloads, workload_builder
from repro.mem import cwalker
from repro.mem.cache import CacheGeometry
from repro.mem.hierarchy import HierarchyConfig
from repro.mem.partition import PartitionMode

C_AVAILABLE = cwalker.load() is not None

ENGINES = ("reference", "fast", "compiled")

#: Every registered workload, in a configuration small enough to run
#: the full engine x mode x cpu matrix in seconds.
WORKLOADS = {
    "pipeline": {"n_stages": 4, "n_tokens": 16, "token_bytes": 1024,
                 "work_bytes": 8192, "capacity_tokens": 2},
    "two_jpeg_canny": {"scale": "test", "frames": 1},
    "mpeg2": {"scale": "test", "frames": 1},
}


def small_cake(n_cpus=2, **overrides) -> CakeConfig:
    return CakeConfig(
        n_cpus=n_cpus,
        hierarchy=HierarchyConfig(
            l1_geometry=CacheGeometry(sets=16, ways=2, line_size=64),
            l2_geometry=CacheGeometry(sets=256, ways=4, line_size=64),
        ),
        **overrides,
    )


def run_platform(workload, kwargs, cake, mode, engine,
                 way_assignment=None):
    platform = Platform(
        workload_builder(workload, **kwargs)(), cake, mode=mode,
        engine=engine,
    )
    if mode is PartitionMode.WAY_PARTITIONED and way_assignment:
        platform.cache_controller.program_way_partitions(way_assignment)
    metrics = platform.run()
    return run_metrics_to_payload(metrics), platform


def assert_engines_identical(workload, kwargs, cake, mode,
                             way_assignment=None, expect=None):
    payloads = {}
    platforms = {}
    for engine in ENGINES:
        payloads[engine], platforms[engine] = run_platform(
            workload, kwargs, cake, mode, engine,
            way_assignment=way_assignment,
        )
    assert payloads["fast"] == payloads["reference"], (workload, mode)
    assert payloads["compiled"] == payloads["reference"], (workload, mode)
    if expect is not None:
        expect(platforms["reference"], payloads["reference"])
    return platforms


def test_every_registered_workload_is_covered():
    assert set(WORKLOADS) == set(registered_workloads()), (
        "a newly registered workload must join the engine matrix"
    )


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("mode", list(PartitionMode))
@pytest.mark.parametrize("n_cpus", [1, 2])
def test_three_way_engine_matrix(workload, mode, n_cpus):
    """reference == fast == compiled on every workload x mode x cpus."""
    assert_engines_identical(
        workload, WORKLOADS[workload], small_cake(n_cpus), mode
    )


def test_three_way_with_programmed_way_partitions():
    platforms = assert_engines_identical(
        "pipeline", WORKLOADS["pipeline"], small_cake(2),
        PartitionMode.WAY_PARTITIONED,
        way_assignment={"task:stage0": (0, 1), "task:stage1": (2,)},
    )
    stats = platforms["compiled"].mem.l2_stats
    assert stats.total.accesses > 0


def test_three_way_under_fifo_blocking():
    """Capacity-1 FIFOs force blocked reads and writes on every task
    boundary -- the segment breakers the collector must respect."""
    kwargs = dict(WORKLOADS["pipeline"], capacity_tokens=1, n_tokens=24)

    def expect(platform, payload):
        blocked = sum(
            task.stats.blocked_reads + task.stats.blocked_writes
            for task in platform.tasks
        )
        assert blocked > 0, "workload never blocked; test is vacuous"

    assert_engines_identical(
        "pipeline", kwargs, small_cake(2), PartitionMode.SHARED,
        expect=expect,
    )


@pytest.mark.parametrize("scheduling", ["migrate", "static"])
def test_three_way_under_tiny_quantum(scheduling):
    """A quantum far smaller than one op forces a preemption check at
    every op boundary: pre-pulled ops must hand back through
    ``pending_ops`` with replay-exact order, across migration too."""
    cake = small_cake(2, quantum_cycles=500, scheduling=scheduling)

    def expect(platform, payload):
        dispatches = sum(t.stats.dispatches for t in platform.tasks)
        assert dispatches > len(platform.tasks), "never preempted"

    assert_engines_identical(
        "pipeline", WORKLOADS["pipeline"], cake, PartitionMode.SHARED,
        expect=expect,
    )


def test_three_way_without_switch_traffic():
    """switch_cycles=0 removes the dispatch entries entirely."""
    assert_engines_identical(
        "pipeline", WORKLOADS["pipeline"],
        small_cake(2, switch_cycles=0), PartitionMode.SHARED,
    )


def _bursty_network():
    """Two chained tasks whose programs emit *runs* of deterministic
    ops (computes and delays) between FIFO synchronisations -- the
    shape the segment collector exists for."""
    from repro.kpn.graph import FifoSpec, ProcessNetwork, TaskSpec

    def producer(ctx):
        for _ in range(ctx.params["n_tokens"]):
            for _ in range(6):
                yield ctx.compute(
                    ctx.fetch(400),
                    ctx.stream(ctx.heap, 0, 4096, write=True),
                )
                yield ctx.delay(120)
            yield ctx.write("out")

    def consumer(ctx):
        for _ in range(ctx.params["n_tokens"]):
            yield ctx.read("in")
            for _ in range(4):
                yield ctx.compute(ctx.stream(ctx.heap, 0, 4096))

    network = ProcessNetwork(
        "bursty", rt_data_bytes=4096, rt_bss_bytes=4096
    )
    network.add_task(TaskSpec(
        name="prod", program=producer, params={"n_tokens": 12},
        heap_bytes=8192,
    ))
    network.add_task(TaskSpec(
        name="cons", program=consumer, params={"n_tokens": 12},
        heap_bytes=8192,
    ))
    network.add_fifo(FifoSpec(
        name="ch", producer="prod", producer_port="out",
        consumer="cons", consumer_port="in",
        token_bytes=256, capacity_tokens=4,
    ))
    return network


def _run_bursty(engine, n_cpus=1):
    platform = Platform(_bursty_network(), small_cake(n_cpus),
                        engine=engine)
    metrics = platform.run()
    return run_metrics_to_payload(metrics), platform


@pytest.mark.parametrize("n_cpus", [1, 2])
def test_three_way_with_bursty_segments(n_cpus):
    """Multi-op segments (computes + delays) stay bit-identical."""
    payloads = {
        engine: _run_bursty(engine, n_cpus)[0] for engine in ENGINES
    }
    assert payloads["fast"] == payloads["reference"]
    assert payloads["compiled"] == payloads["reference"]


@pytest.mark.skipif(not C_AVAILABLE, reason="no C compiler available")
def test_compiled_runs_fewer_kernel_events():
    """Whole-segment batching must shrink the event-loop traffic: one
    timeout per flushed segment instead of one per op."""
    payload_fast, fast = _run_bursty("fast")
    payload_compiled, compiled = _run_bursty("compiled")
    assert payload_fast == payload_compiled
    assert compiled.mem.segment_ready
    assert compiled.sim.events_processed < fast.sim.events_processed


def _sleepy_network():
    """A task whose first deterministic stretch is delay-only."""
    from repro.kpn.graph import FifoSpec, ProcessNetwork, TaskSpec

    def sleeper(ctx):
        yield ctx.delay(500)
        yield ctx.delay(300)
        yield ctx.write("out")

    def waiter(ctx):
        yield ctx.read("in")

    network = ProcessNetwork("sleepy", rt_data_bytes=4096,
                             rt_bss_bytes=4096)
    network.add_task(TaskSpec(name="sleeper", program=sleeper))
    network.add_task(TaskSpec(name="waiter", program=waiter))
    network.add_fifo(FifoSpec(
        name="ch", producer="sleeper", producer_port="out",
        consumer="waiter", consumer_port="in",
        token_bytes=64, capacity_tokens=1,
    ))
    return network


def test_compiled_survives_runless_first_segment():
    """Regression: the very first compiled call may carry zero memory
    runs (a delay-only op stretch, or an empty batch) -- the scratch
    buffers must initialise anyway."""
    from repro.mem.hierarchy import HierarchyConfig, MemorySystem
    from repro.mem.trace import AccessBatch

    # Empty batch as the system's first compiled call.
    mem = MemorySystem(1, HierarchyConfig(engine="compiled"))
    result = mem.execute_batch(0, 1, AccessBatch.empty(), 0.0)
    assert result.cycles == 0 and result.accesses == 0

    # Delay-only first stretch through the real CPU runner.
    payloads = {}
    for engine in ENGINES:
        platform = Platform(_sleepy_network(), small_cake(1),
                            engine=engine)
        payloads[engine] = run_metrics_to_payload(platform.run())
    assert payloads["compiled"] == payloads["reference"]
    assert payloads["fast"] == payloads["reference"]


@pytest.mark.skipif(not C_AVAILABLE, reason="no C compiler available")
def test_compiled_engine_reaches_the_c_tier():
    _payload, platform = run_platform(
        "pipeline", WORKLOADS["pipeline"], small_cake(2),
        PartitionMode.SET_PARTITIONED, "compiled",
    )
    assert platform.mem._compiled is not None


# -- the exp seam --------------------------------------------------------------


def test_engine_is_not_part_of_scenario_identity():
    base = Scenario(
        workload=WorkloadSpec("pipeline", WORKLOADS["pipeline"]),
        cake=small_cake(2),
    )
    for engine in ENGINES:
        variant = base.with_engine(engine)
        assert variant.scenario_id == base.scenario_id
        assert variant.profile_key == base.profile_key
        assert variant.baseline_key == base.baseline_key
        # ... but the transport form keeps the engine for workers.
        assert variant.to_dict()["cake"]["hierarchy"]["engine"] == engine
        assert "engine" not in \
            variant.to_dict(canonical=True)["cake"]["hierarchy"]
        restored = Scenario.from_dict(variant.to_dict())
        assert restored.effective_cake.hierarchy.engine == engine


def test_canonical_dict_roundtrips_with_default_engine():
    base = Scenario(
        workload=WorkloadSpec("pipeline", WORKLOADS["pipeline"]),
        cake=small_cake(2),
    )
    restored = Scenario.from_dict(base.to_dict(canonical=True))
    assert restored.scenario_id == base.scenario_id
    assert restored.effective_cake.hierarchy.engine == "fast"
