"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Event, Interrupt, Simulator


def test_timeout_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(5)
        yield sim.timeout(2.5)
        return "done"

    p = sim.process(proc(sim))
    sim.run()
    assert sim.now == 7.5
    assert p.value == "done"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_timeout_value_passed_to_process():
    sim = Simulator()
    seen = []

    def proc(sim):
        value = yield sim.timeout(1, value="hello")
        seen.append(value)

    sim.process(proc(sim))
    sim.run()
    assert seen == ["hello"]


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def proc(sim, delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.process(proc(sim, 3, "c"))
    sim.process(proc(sim, 1, "a"))
    sim.process(proc(sim, 2, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(1)
        order.append(tag)

    for tag in "abcdef":
        sim.process(proc(sim, tag))
    sim.run()
    assert order == list("abcdef")


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()

    def proc(sim):
        while True:
            yield sim.timeout(10)

    sim.process(proc(sim))
    sim.run(until=25)
    assert sim.now == 25
    assert sim.pending_events > 0


def test_run_until_past_time_rejected():
    sim = Simulator()
    sim.run(until=5)
    with pytest.raises(SimulationError):
        sim.run(until=1)


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(4)
        return 42

    p = sim.process(proc(sim))
    assert sim.run(until=p) == 42
    assert sim.now == 4


def test_process_waits_on_another_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(3)
        return "child-result"

    def parent(sim):
        result = yield sim.process(child(sim))
        return result

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == "child-result"


def test_waiting_on_already_finished_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1)
        return 7

    def parent(sim, child_proc):
        yield sim.timeout(10)  # child is long done
        value = yield child_proc
        return value

    child_proc = sim.process(child(sim))
    parent_proc = sim.process(parent(sim, child_proc))
    sim.run()
    assert parent_proc.value == 7


def test_manual_event_succeed():
    sim = Simulator()
    gate = sim.event()
    log = []

    def waiter(sim, gate):
        value = yield gate
        log.append(value)

    def opener(sim, gate):
        yield sim.timeout(5)
        gate.succeed("open")

    sim.process(waiter(sim, gate))
    sim.process(opener(sim, gate))
    sim.run()
    assert log == ["open"]
    assert gate.processed and gate.ok


def test_event_double_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_value_before_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(SimulationError):
        _ = event.value


def test_failed_event_raises_in_process():
    sim = Simulator()
    caught = []

    def waiter(sim, gate):
        try:
            yield gate
        except ValueError as exc:
            caught.append(str(exc))

    gate = sim.event()
    sim.process(waiter(sim, gate))
    gate.fail(ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_failure_propagates_from_run():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1)
        raise RuntimeError("process blew up")

    sim.process(bad(sim))
    with pytest.raises(RuntimeError, match="process blew up"):
        sim.run()


def test_yielding_non_event_is_an_error():
    sim = Simulator()
    caught = []

    def bad(sim):
        try:
            yield 42
        except SimulationError as exc:
            caught.append(str(exc))

    sim.process(bad(sim))
    sim.run()
    assert len(caught) == 1 and "non-event" in caught[0]


def test_interrupt_reaches_process():
    sim = Simulator()
    log = []

    def victim(sim):
        try:
            yield sim.timeout(100)
        except Interrupt as interrupt:
            log.append(("interrupted", interrupt.cause, sim.now))

    def attacker(sim, victim_proc):
        yield sim.timeout(10)
        victim_proc.interrupt(cause="preempt")

    victim_proc = sim.process(victim(sim))
    sim.process(attacker(sim, victim_proc))
    sim.run()
    assert log == [("interrupted", "preempt", 10)]


def test_interrupt_dead_process_rejected():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1)

    p = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_all_of_collects_values():
    sim = Simulator()

    def proc(sim):
        t1 = sim.timeout(1, value="a")
        t2 = sim.timeout(2, value="b")
        values = yield AllOf(sim, [t1, t2])
        return sorted(values.values())

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == ["a", "b"]
    assert sim.now == 2


def test_any_of_fires_at_first():
    sim = Simulator()

    def proc(sim):
        slow = sim.timeout(50, value="slow")
        fast = sim.timeout(3, value="fast")
        values = yield AnyOf(sim, [slow, fast])
        return list(values.values())

    p = sim.process(proc(sim))
    sim.run(until=p)
    assert p.value == ["fast"]
    assert sim.now == 3


def test_empty_all_of_succeeds_immediately():
    sim = Simulator()

    def proc(sim):
        value = yield AllOf(sim, [])
        return value

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == {}


def test_process_is_alive_lifecycle():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(5)

    p = sim.process(proc(sim))
    assert p.is_alive
    sim.run()
    assert not p.is_alive


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(7)
    assert sim.peek() == 7


def test_step_on_empty_queue_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_determinism_two_identical_runs():
    def build():
        sim = Simulator()
        trace = []

        def proc(sim, tag, period):
            while True:
                yield sim.timeout(period)
                trace.append((sim.now, tag))

        sim.process(proc(sim, "x", 3))
        sim.process(proc(sim, "y", 5))
        sim.run(until=100)
        return trace

    assert build() == build()
