"""Tests for Resource, Container and Store."""

import pytest

from repro.errors import SimulationError
from repro.sim import Container, Resource, Simulator, Store


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    first, second, third = resource.request(), resource.request(), resource.request()
    sim.run()
    assert first.processed and second.processed
    assert not third.triggered
    assert resource.count == 2 and resource.queue_length == 1


def test_resource_release_wakes_waiter():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    first = resource.request()
    second = resource.request()
    sim.run()
    assert not second.triggered
    resource.release(first)
    sim.run()
    assert second.processed
    assert resource.count == 1


def test_resource_release_unknown_rejected():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        resource.release(sim.event())


def test_resource_cancel_queued_request():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    first = resource.request()
    second = resource.request()
    resource.release(second)  # cancel while queued
    assert resource.queue_length == 0
    resource.release(first)
    assert resource.count == 0


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_resource_mutual_exclusion_in_processes():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    inside = []

    def worker(sim, tag):
        req = resource.request()
        yield req
        inside.append(tag)
        assert len(inside) == 1
        yield sim.timeout(5)
        inside.remove(tag)
        resource.release(req)

    sim.process(worker(sim, "a"))
    sim.process(worker(sim, "b"))
    sim.run()
    assert sim.now == 10


def test_container_levels_and_blocking():
    sim = Simulator()
    tank = Container(sim, capacity=10, init=0)
    got = tank.get(4)
    assert not got.triggered
    tank.put(3)
    sim.run()
    assert not got.triggered
    tank.put(2)
    sim.run()
    assert got.processed
    assert tank.level == 1


def test_container_put_blocks_when_full():
    sim = Simulator()
    tank = Container(sim, capacity=5, init=5)
    put = tank.put(2)
    sim.run()
    assert not put.triggered
    tank.get(3)
    sim.run()
    assert put.processed
    assert tank.level == 4


def test_container_fifo_no_overtaking():
    sim = Simulator()
    tank = Container(sim, capacity=100, init=0)
    big = tank.get(10)
    small = tank.get(1)
    tank.put(5)
    sim.run()
    # The small get must not overtake the big one.
    assert not big.triggered and not small.triggered
    tank.put(6)
    sim.run()
    assert big.processed and small.processed


def test_container_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Container(sim, capacity=0)
    with pytest.raises(SimulationError):
        Container(sim, capacity=5, init=6)
    tank = Container(sim, capacity=5)
    with pytest.raises(SimulationError):
        tank.put(-1)
    with pytest.raises(SimulationError):
        tank.get(6)


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim, capacity=10)
    for item in ("a", "b", "c"):
        store.put(item)
    results = [store.get(), store.get(), store.get()]
    sim.run()
    assert [event.value for event in results] == ["a", "b", "c"]


def test_store_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    store.put("x")
    blocked = store.put("y")
    sim.run()
    assert not blocked.triggered
    got = store.get()
    sim.run()
    assert got.value == "x"
    assert blocked.processed
    assert store.items == ("y",)


def test_store_get_blocks_until_item():
    sim = Simulator()
    store = Store(sim)
    got = store.get()
    sim.run()
    assert not got.triggered
    store.put(42)
    sim.run()
    assert got.value == 42
