"""Tests for the deterministic RNG hub."""

from repro.sim import RngHub
from repro.sim.rng import derive_seed


def test_same_seed_same_stream():
    a = RngHub(7).stream("x").integers(0, 1000, 16)
    b = RngHub(7).stream("x").integers(0, 1000, 16)
    assert (a == b).all()


def test_different_names_differ():
    hub = RngHub(7)
    a = hub.stream("x").integers(0, 1_000_000, 32)
    b = hub.stream("y").integers(0, 1_000_000, 32)
    assert not (a == b).all()


def test_streams_are_cached():
    hub = RngHub(0)
    assert hub.stream("a") is hub.stream("a")


def test_creation_order_does_not_matter():
    hub1 = RngHub(3)
    hub1.stream("first")
    value1 = hub1.stream("second").integers(0, 10**9)
    hub2 = RngHub(3)
    value2 = hub2.stream("second").integers(0, 10**9)
    assert value1 == value2


def test_fork_namespaces_streams():
    hub = RngHub(5)
    child = hub.fork("sub")
    a = child.stream("x").integers(0, 10**9)
    b = hub.stream("x").integers(0, 10**9)
    assert a != b  # astronomically unlikely to collide


def test_derive_seed_is_stable():
    assert derive_seed(1, "abc") == derive_seed(1, "abc")
    assert derive_seed(1, "abc") != derive_seed(2, "abc")
